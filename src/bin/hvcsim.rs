//! `hvcsim` — command-line driver for the hybrid virtual caching
//! simulator.
//!
//! ```sh
//! hvcsim --workload gups --scheme manyseg --refs 1000000
//! hvcsim --workload postgres --scheme dtlb:4096 --llc 8M --warm 200000
//! hvcsim --list
//! ```

use hvc::core::{EnergyModel, SystemConfig, SystemSim, TranslationScheme};
use hvc::os::{AllocPolicy, Kernel};
use hvc::workloads::{apps, WorkloadSpec};
use std::process::ExitCode;

const USAGE: &str = "\
hvcsim — hybrid virtual caching simulator (ISCA 2016 reproduction)

USAGE:
    hvcsim [OPTIONS]

OPTIONS:
    --workload <name>    workload profile (see --list)        [default: gups]
    --scheme <scheme>    baseline | ideal | dtlb:<entries> |
                         manyseg | manyseg-nosc | enigma:<entries>
                                                              [default: manyseg]
    --refs <n>           memory references to simulate        [default: 500000]
    --warm <n>           unmeasured warm-up references        [default: refs/2]
    --seed <n>           workload RNG seed                    [default: 42]
    --mem <size>         gups table size, e.g. 256M, 1G       [default: 512M]
    --llc <size>         LLC capacity: 2M or 8M               [default: 2M]
    --cores <n>          number of cores                      [default: 1]
    --ifetch             model the instruction-fetch stream
    --save-trace <path>  write the measured reference stream to a file
    --replay <path>      replay a saved trace instead of generating one
    --list               list workload profiles and exit
    --help               show this help
";

fn parse_size(s: &str) -> Option<u64> {
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

fn workload_by_name(name: &str, gups_mem: u64) -> Option<WorkloadSpec> {
    Some(match name {
        "gups" => apps::gups(gups_mem),
        "milc" => apps::milc(),
        "mcf" => apps::mcf(),
        "xalancbmk" => apps::xalancbmk(),
        "tigr" => apps::tigr(),
        "omnetpp" => apps::omnetpp(),
        "soplex" => apps::soplex(),
        "astar" => apps::astar(),
        "cactus" => apps::cactus(),
        "gems" => apps::gems(),
        "canneal" => apps::canneal(),
        "stream" => apps::stream(),
        "mummer" => apps::mummer(),
        "memcached" => apps::memcached(),
        "cg" => apps::npb_cg(),
        "graph500" => apps::graph500(),
        "ferret" => apps::ferret(),
        "postgres" => apps::postgres(),
        "specjbb" => apps::specjbb(),
        "firefox" => apps::firefox(),
        "apache" => apps::apache(),
        _ => return None,
    })
}

fn parse_scheme(s: &str) -> Option<(TranslationScheme, AllocPolicy)> {
    let demand = AllocPolicy::DemandPaging;
    let eager = AllocPolicy::EagerSegments { split: 1 };
    Some(match s {
        "baseline" => (TranslationScheme::Baseline, demand),
        "ideal" => (TranslationScheme::Ideal, demand),
        "manyseg" => (TranslationScheme::HybridManySegment { segment_cache: true }, eager),
        "manyseg-nosc" => (TranslationScheme::HybridManySegment { segment_cache: false }, eager),
        _ => {
            if let Some(n) = s.strip_prefix("dtlb:") {
                (TranslationScheme::HybridDelayedTlb(n.parse().ok()?), demand)
            } else if let Some(n) = s.strip_prefix("enigma:") {
                (TranslationScheme::EnigmaDelayedTlb(n.parse().ok()?), demand)
            } else {
                return None;
            }
        }
    })
}

fn main() -> ExitCode {
    let mut workload = "gups".to_string();
    let mut scheme = "manyseg".to_string();
    let mut refs = 500_000usize;
    let mut warm: Option<usize> = None;
    let mut seed = 42u64;
    let mut mem = 512u64 << 20;
    let mut llc = 2u64 << 20;
    let mut cores = 1usize;
    let mut ifetch = false;
    let mut save_trace: Option<String> = None;
    let mut replay: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> Option<String> {
        *i += 1;
        args.get(*i - 1).cloned()
    };
    while i < args.len() {
        let arg = args[i].clone();
        i += 1;
        let bad = || {
            eprintln!("invalid or missing value for {arg}\n\n{USAGE}");
            ExitCode::FAILURE
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                println!("workload profiles:");
                println!("  big-memory : gups milc mcf xalancbmk tigr omnetpp soplex");
                println!("               astar cactus gems canneal stream mummer");
                println!("               memcached cg graph500");
                println!("  synonym    : ferret postgres specjbb firefox apache");
                return ExitCode::SUCCESS;
            }
            "--workload" => match next(&mut i) {
                Some(v) => workload = v,
                None => return bad(),
            },
            "--scheme" => match next(&mut i) {
                Some(v) => scheme = v,
                None => return bad(),
            },
            "--refs" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => refs = v,
                None => return bad(),
            },
            "--warm" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => warm = Some(v),
                None => return bad(),
            },
            "--seed" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return bad(),
            },
            "--mem" => match next(&mut i).and_then(|v| parse_size(&v)) {
                Some(v) => mem = v,
                None => return bad(),
            },
            "--llc" => match next(&mut i).and_then(|v| parse_size(&v)) {
                Some(v) => llc = v,
                None => return bad(),
            },
            "--cores" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => cores = v,
                None => return bad(),
            },
            "--ifetch" => ifetch = true,
            "--save-trace" => match next(&mut i) {
                Some(v) => save_trace = Some(v),
                None => return bad(),
            },
            "--replay" => match next(&mut i) {
                Some(v) => replay = Some(v),
                None => return bad(),
            },
            _ => {
                eprintln!("unknown option {arg}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(spec) = workload_by_name(&workload, mem) else {
        eprintln!("unknown workload '{workload}' (try --list)");
        return ExitCode::FAILURE;
    };
    let Some((scheme, policy)) = parse_scheme(&scheme) else {
        eprintln!("unknown scheme '{scheme}'\n\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut config = SystemConfig::isca2016();
    config.hierarchy = hvc::cache::HierarchyConfig::isca2016(cores.max(1));
    if llc != 2 << 20 {
        // 16-way, 64 B lines: capacity must divide into a power-of-two
        // number of sets.
        let lines = llc / 64;
        if lines == 0 || !lines.is_multiple_of(16) || !(lines / 16).is_power_of_two() {
            eprintln!(
                "--llc {llc} is not a valid 16-way geometry (use a power of two ≥ 64K, e.g. 2M, 8M)"
            );
            return ExitCode::FAILURE;
        }
        config.hierarchy.llc =
            hvc::cache::CacheConfig::new(llc, 16, hvc::types::Cycles::new(27));
    }
    config.model_ifetch = ifetch;

    let mut kernel = Kernel::new(16 << 30, policy);
    let mut wl = match spec.instantiate(&mut kernel, seed) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("failed to set up workload: {e}");
            return ExitCode::FAILURE;
        }
    };

    let warm = warm.unwrap_or(refs / 2);
    eprintln!(
        "running {} under {:?} ({} warm-up + {} measured references)…",
        wl.name(),
        scheme,
        warm,
        refs
    );
    let mut sim = SystemSim::new(kernel, config, scheme);
    if warm > 0 {
        sim.warm_up(&mut wl, warm);
    }
    let start = std::time::Instant::now();
    let report = if let Some(path) = &replay {
        // Replay a saved trace (the workload instance still provided the
        // memory layout; the stream comes from the file).
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let reader = match hvc::trace::read_trace(std::io::BufReader::new(file)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot read trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mlp = wl.mlp();
        sim.run_trace(reader.map_while(Result::ok).take(refs), mlp)
    } else if let Some(path) = &save_trace {
        let items: Vec<hvc::types::TraceItem> = (0..refs).map(|_| wl.next_item()).collect();
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = hvc::trace::write_trace(std::io::BufWriter::new(file), items.iter().copied()) {
            eprintln!("cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("saved {} references to {path}", items.len());
        let mlp = wl.mlp();
        sim.run_trace(items, mlp)
    } else {
        sim.run(&mut wl, refs)
    };
    let wall = start.elapsed();

    let t = &report.translation;
    println!("== {} / {:?} ==", wl.name(), sim.scheme());
    println!("instructions        {:>12}", report.instructions);
    println!("cycles              {:>12}", report.cycles);
    println!("IPC                 {:>12.4}", report.ipc());
    println!("front TLB lookups   {:>12}", t.front_tlb_accesses());
    println!("filter lookups      {:>12}", t.filter_lookups);
    println!("  candidates        {:>12}", t.filter_candidates);
    println!("  false positives   {:>12}", t.false_positives);
    println!("delayed TLB lookups {:>12}", t.delayed_tlb_lookups);
    println!("  misses            {:>12}", t.delayed_tlb_misses);
    println!("segment-cache hits  {:>12}", t.sc_lookups);
    println!("PTE reads           {:>12}", t.pte_reads);
    println!("shared accesses     {:>12}", t.shared_accesses);
    println!("LLC miss rate       {:>11.1}%", report.cache.llc.miss_rate().unwrap_or(0.0) * 100.0);
    println!("DRAM mean latency   {:>12.1}", report.dram.mean_latency().unwrap_or(0.0));
    let energy = EnergyModel::cacti_32nm().breakdown(t, 4096).total() / 1e6;
    println!("translation energy  {:>10.2} µJ", energy);
    println!("minor faults        {:>12}", report.minor_faults);
    println!(
        "simulated {:.2} M refs/s",
        (warm + refs) as f64 / wall.as_secs_f64() / 1e6
    );
    ExitCode::SUCCESS
}
