//! `hvcsim` — command-line driver for the hybrid virtual caching
//! simulator.
//!
//! ```sh
//! hvcsim --workload gups --scheme manyseg --refs 1000000
//! hvcsim --workload postgres --scheme dtlb:4096 --llc 8M --warm 200000
//! hvcsim sweep --preset fig9 --jobs 4 --out fig9.json
//! hvcsim sweep --workloads gups,mcf --schemes baseline,manyseg --out report.json
//! hvcsim check --preset smoke --seed-range 0..8
//! hvcsim --list
//! ```

use hvc::check::{stress, CheckConfig, VirtDiffHarness};
use hvc::core::{EnergyModel, SystemConfig, SystemSim, VirtScheme};
use hvc::os::{AllocPolicy, Kernel};
use hvc::runner::{
    params, presets, run_cell, run_sweep, sweep_report, write_atomic, Experiment, RunOptions,
};
use hvc::serve::{ServeConfig, Server};
use hvc::virt::Hypervisor;
use std::process::ExitCode;

const USAGE: &str = "\
hvcsim — hybrid virtual caching simulator (ISCA 2016 reproduction)

USAGE:
    hvcsim [OPTIONS]                 run one simulation
    hvcsim sweep [SWEEP OPTIONS]     run an experiment grid in parallel
    hvcsim check [CHECK OPTIONS]     run the correctness checker
    hvcsim bench [BENCH OPTIONS]     measure simulator throughput (refs/sec)
    hvcsim serve [SERVE OPTIONS]     run the HTTP experiment server

OPTIONS:
    --workload <name>    workload profile (see --list)        [default: gups]
    --scheme <scheme>    baseline | ideal | dtlb:<entries> |
                         manyseg | manyseg-nosc | enigma:<entries>
                                                              [default: manyseg]
    --refs <n>           memory references to simulate        [default: 500000]
    --warm <n>           unmeasured warm-up references        [default: refs/2]
    --seed <n>           workload RNG seed                    [default: 42]
    --mem <size>         gups table size, e.g. 256M, 1G       [default: 512M]
    --llc <size>         LLC capacity: 2M or 8M               [default: 2M]
    --cores <n>          number of cores                      [default: 1]
    --ifetch             model the instruction-fetch stream
    --obs                print latency percentiles and cycle attribution
    --trace-events <p>   write a Chrome trace_event JSON of the run
    --save-trace <path>  write the measured reference stream to a file
    --replay <path>      replay a saved trace instead of generating one
    --list               list workload profiles and exit
    --help               show this help

SWEEP OPTIONS:
    --preset <name>      a named grid (see --list-presets); grid axes
                         below override the preset's
    --workloads <a,b>    comma-separated workload axis
    --schemes <a,b>      comma-separated scheme axis
    --seeds <a,b>        comma-separated base-seed axis       [default: 42]
    --llc <a,b>          comma-separated LLC-capacity axis    [default: 2M]
    --refs / --warm / --mem / --cores / --ifetch / --replay   as above
    --jobs <n>           worker threads                       [default: 1]
    --shards <n>         measurement windows merged per cell  [default: 1]
    --check              verify every cell with the hvc-check oracle
    --out <path>         write the JSON report here (default: stdout)
    --list-presets       list presets and exit

CHECK OPTIONS:
    --preset <name>      check every cell of a named grid     [default: smoke]
    --workloads / --schemes / --seeds / --refs / --warm / --mem   as above
    --seed-range <a..b>  randomized stress-script seeds       [default: 0..4]
    --stress-ops <n>     operations per stress script         [default: 400]
    --native-only        skip the virtualized (nested) harnesses

BENCH OPTIONS:
    --refs <n>           measured references per case (also honours the
                         HVC_REFS environment variable)       [default: 1000000]
    --warm <n>           unmeasured warm-up references        [default: 250000]
    --mem <size>         workload memory, e.g. 256M, 1G       [default: 512M]
    --seed <n>           workload RNG seed                    [default: 42]
    --out <path>         JSON report path       [default: BENCH_hotpath.json]

SERVE OPTIONS:
    --addr <host:port>   listen address (port 0 = ephemeral)
                                                   [default: 127.0.0.1:8080]
    --jobs <n>           simulation worker threads            [default: 2]
    --cache-capacity <n> memoized cells kept in memory        [default: 4096]
    --spool <dir>        crash-safe result spool; restarting with the same
                         directory resumes interrupted sweeps (no spool:
                         results are memoized in memory only)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => sweep_main(&args[1..]),
        Some("check") => check_main(&args[1..]),
        Some("bench") => bench_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        _ => single_main(&args),
    }
}

/// `hvcsim sweep ...`: run a grid and write a JSON report.
fn sweep_main(args: &[String]) -> ExitCode {
    let mut exp: Option<Experiment> = None;
    let mut workloads: Option<Vec<String>> = None;
    let mut schemes: Option<Vec<String>> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut llc: Option<Vec<u64>> = None;
    let mut refs: Option<usize> = None;
    let mut warm: Option<usize> = None;
    let mut mem: Option<u64> = None;
    let mut cores: Option<usize> = None;
    let mut ifetch = false;
    let mut obs = false;
    let mut replay: Option<String> = None;
    let mut opts = RunOptions::default();
    let mut out: Option<String> = None;

    let mut i = 0;
    let next = |i: &mut usize| -> Option<String> {
        *i += 1;
        args.get(*i - 1).cloned()
    };
    while i < args.len() {
        let arg = args[i].clone();
        i += 1;
        let bad = || {
            eprintln!("invalid or missing value for {arg}\n\n{USAGE}");
            ExitCode::FAILURE
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-presets" => {
                println!("presets:");
                for (name, summary) in presets::PRESET_NAMES {
                    println!("  {name:<8} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--preset" => match next(&mut i).as_deref().and_then(presets::preset) {
                Some(p) => exp = Some(p),
                None => {
                    eprintln!("unknown preset (try --list-presets)");
                    return ExitCode::FAILURE;
                }
            },
            "--workloads" => match next(&mut i) {
                Some(v) => workloads = Some(split_list(&v)),
                None => return bad(),
            },
            "--schemes" => match next(&mut i) {
                Some(v) => schemes = Some(split_list(&v)),
                None => return bad(),
            },
            "--seeds" => {
                match next(&mut i)
                    .map(|v| split_list(&v))
                    .and_then(|l| l.iter().map(|s| s.parse().ok()).collect())
                {
                    Some(v) => seeds = Some(v),
                    None => return bad(),
                }
            }
            "--llc" => {
                match next(&mut i)
                    .map(|v| split_list(&v))
                    .and_then(|l| l.iter().map(|s| params::parse_size(s)).collect())
                {
                    Some(v) => llc = Some(v),
                    None => return bad(),
                }
            }
            "--refs" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => refs = Some(v),
                None => return bad(),
            },
            "--warm" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => warm = Some(v),
                None => return bad(),
            },
            "--mem" => match next(&mut i).and_then(|v| params::parse_size(&v)) {
                Some(v) => mem = Some(v),
                None => return bad(),
            },
            "--cores" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => cores = Some(v),
                None => return bad(),
            },
            "--ifetch" => ifetch = true,
            "--obs" => obs = true,
            "--replay" => match next(&mut i) {
                Some(v) => replay = Some(v),
                None => return bad(),
            },
            "--jobs" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => opts.jobs = v,
                _ => return bad(),
            },
            "--shards" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => opts.shards = v,
                _ => return bad(),
            },
            "--check" => opts.check = true,
            "--out" => match next(&mut i) {
                Some(v) => out = Some(v),
                None => return bad(),
            },
            _ => {
                eprintln!("unknown option {arg}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Grid flags override the preset; with no preset they refine the
    // default single-cell grid.
    let mut exp = exp.unwrap_or_default();
    if let Some(v) = workloads {
        exp.workloads = v;
    }
    if let Some(v) = schemes {
        exp.schemes = v;
    }
    if let Some(v) = seeds {
        exp.seeds = v;
    }
    if let Some(v) = llc {
        exp.llc_bytes = v;
    }
    if let Some(v) = refs {
        exp.refs = v;
    }
    if let Some(v) = warm {
        exp.warm = v;
    }
    if let Some(v) = mem {
        exp.mem = v;
    }
    if let Some(v) = cores {
        exp.cores = v;
    }
    if ifetch {
        exp.ifetch = true;
    }
    if obs {
        exp.obs = true;
    }
    if replay.is_some() {
        exp.replay = replay;
    }

    if let Err(e) = exp.validate() {
        eprintln!("invalid sweep: {e}");
        return ExitCode::FAILURE;
    }
    let cells = exp.cells().len();
    eprintln!(
        "sweeping '{}': {cells} cells × {} refs on {} thread(s)…",
        exp.name, exp.refs, opts.jobs
    );
    let outcome = match run_sweep(&exp, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("swept {cells} cells in {:.2}s", outcome.wall.as_secs_f64());

    let text = sweep_report(&exp, &opts, &outcome).to_pretty();
    match &out {
        Some(path) => {
            // Atomic so a crash or full disk never leaves a truncated
            // report where a previous good one stood.
            if let Err(e) = write_atomic(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// `hvcsim check ...`: run the differential oracle over a grid of
/// native cells, the virtualized harnesses, and seeded stress scripts.
/// Exits non-zero on the first invariant violation.
fn check_main(args: &[String]) -> ExitCode {
    let mut exp: Option<Experiment> = None;
    let mut workloads: Option<Vec<String>> = None;
    let mut schemes: Option<Vec<String>> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut refs: Option<usize> = None;
    let mut warm: Option<usize> = None;
    let mut mem: Option<u64> = None;
    let mut seed_range = 0u64..4u64;
    let mut stress_ops = 400usize;
    let mut native_only = false;

    let mut i = 0;
    let next = |i: &mut usize| -> Option<String> {
        *i += 1;
        args.get(*i - 1).cloned()
    };
    while i < args.len() {
        let arg = args[i].clone();
        i += 1;
        let bad = || {
            eprintln!("invalid or missing value for {arg}\n\n{USAGE}");
            ExitCode::FAILURE
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--preset" => match next(&mut i).as_deref().and_then(presets::preset) {
                Some(p) => exp = Some(p),
                None => {
                    eprintln!("unknown preset (try --list-presets)");
                    return ExitCode::FAILURE;
                }
            },
            "--workloads" => match next(&mut i) {
                Some(v) => workloads = Some(split_list(&v)),
                None => return bad(),
            },
            "--schemes" => match next(&mut i) {
                Some(v) => schemes = Some(split_list(&v)),
                None => return bad(),
            },
            "--seeds" => {
                match next(&mut i)
                    .map(|v| split_list(&v))
                    .and_then(|l| l.iter().map(|s| s.parse().ok()).collect())
                {
                    Some(v) => seeds = Some(v),
                    None => return bad(),
                }
            }
            "--refs" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => refs = Some(v),
                None => return bad(),
            },
            "--warm" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => warm = Some(v),
                None => return bad(),
            },
            "--mem" => match next(&mut i).and_then(|v| params::parse_size(&v)) {
                Some(v) => mem = Some(v),
                None => return bad(),
            },
            "--seed-range" => {
                match next(&mut i).and_then(|v| {
                    let (a, b) = v.split_once("..")?;
                    Some(a.trim().parse().ok()?..b.trim().parse().ok()?)
                }) {
                    Some(r) => seed_range = r,
                    None => return bad(),
                }
            }
            "--stress-ops" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => stress_ops = v,
                None => return bad(),
            },
            "--native-only" => native_only = true,
            _ => {
                eprintln!("unknown option {arg}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut exp = exp.unwrap_or_else(|| presets::preset("smoke").expect("smoke preset exists"));
    if let Some(v) = workloads {
        exp.workloads = v;
    }
    if let Some(v) = schemes {
        exp.schemes = v;
    }
    if let Some(v) = seeds {
        exp.seeds = v;
    }
    if let Some(v) = refs {
        exp.refs = v;
    }
    if let Some(v) = warm {
        exp.warm = v;
    }
    if let Some(v) = mem {
        exp.mem = v;
    }
    exp.replay = None;
    if let Err(e) = exp.validate() {
        eprintln!("invalid grid: {e}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;

    // Native cells: measurement plus the differential-oracle pass.
    let cells = exp.cells();
    eprintln!("checking {} native cell(s)…", cells.len());
    for cell in &cells {
        match run_cell(&exp, cell, 1, None, true) {
            Ok(_) => eprintln!(
                "  ok   {} / {} / seed {}",
                cell.workload, cell.scheme, cell.seed
            ),
            Err(e) => {
                eprintln!(
                    "  FAIL {} / {} / seed {}: {e}",
                    cell.workload, cell.scheme, cell.seed
                );
                failed = true;
            }
        }
    }

    // Virtualized harnesses: every workload under both nested hybrid
    // schemes, against the nested-baseline reference.
    if !native_only {
        let virt_schemes = [
            VirtScheme::HybridDelayedNested(1024),
            VirtScheme::HybridNestedSegments,
        ];
        eprintln!(
            "checking {} virtualized run(s)…",
            exp.workloads.len() * exp.seeds.len() * virt_schemes.len()
        );
        for workload in &exp.workloads {
            for &seed in &exp.seeds {
                for &scheme in &virt_schemes {
                    match check_virt_workload(&exp, workload, seed, scheme) {
                        Ok(()) => eprintln!("  ok   {workload} / {scheme:?} / seed {seed}"),
                        Err(e) => {
                            eprintln!("  FAIL {workload} / {scheme:?} / seed {seed}: {e}");
                            failed = true;
                        }
                    }
                }
            }
        }
    }

    // Seeded stress scripts with shrinking.
    eprintln!(
        "running stress scripts for seeds {}..{} ({stress_ops} ops each)…",
        seed_range.start, seed_range.end
    );
    for seed in seed_range {
        let ops = stress::generate(seed, stress_ops);
        match stress::run_script(&ops) {
            Ok(v) if v.is_empty() => eprintln!("  ok   stress seed {seed}"),
            Ok(v) => {
                failed = true;
                eprintln!("  FAIL stress seed {seed}:");
                for violation in &v {
                    eprintln!("    {violation}");
                }
                match stress::shrink(&ops) {
                    Ok(min) => eprintln!(
                        "  minimal reproducer ({} ops):\n{}",
                        min.len(),
                        stress::script(&min)
                    ),
                    Err(e) => eprintln!("  shrinking failed: {e}"),
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("  FAIL stress seed {seed}: harness error {e}");
            }
        }
    }

    if failed {
        eprintln!("check FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!("all checks passed");
        ExitCode::SUCCESS
    }
}

/// `hvcsim bench ...`: measure simulator throughput over the fixed
/// hot-path matrix and write a `hvc-bench/1` JSON report.
fn bench_main(args: &[String]) -> ExitCode {
    use hvc::bench::hotpath;

    let mut config = hotpath::BenchConfig::default();
    let mut out = "BENCH_hotpath.json".to_string();

    let mut i = 0;
    let next = |i: &mut usize| -> Option<String> {
        *i += 1;
        args.get(*i - 1).cloned()
    };
    while i < args.len() {
        let arg = args[i].clone();
        i += 1;
        let bad = || {
            eprintln!("invalid or missing value for {arg}\n\n{USAGE}");
            ExitCode::FAILURE
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--refs" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => config.refs = v,
                _ => return bad(),
            },
            "--warm" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => config.warm = v,
                None => return bad(),
            },
            "--mem" => match next(&mut i).and_then(|v| params::parse_size(&v)) {
                Some(v) => config.mem = v,
                None => return bad(),
            },
            "--seed" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => config.seed = v,
                None => return bad(),
            },
            "--out" => match next(&mut i) {
                Some(v) => out = v,
                None => return bad(),
            },
            _ => {
                eprintln!("unknown option {arg}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        "benchmarking {} cases × {} refs ({} warm-up each)…",
        hotpath::MATRIX.len(),
        config.refs,
        config.warm
    );
    let cases = hotpath::run_matrix(&config);
    println!(
        "{:<10}  {:<12}  {:>10}  {:>12}",
        "workload", "scheme", "wall ms", "M refs/s"
    );
    for c in &cases {
        println!(
            "{:<10}  {:<12}  {:>10.1}  {:>12.3}",
            c.workload,
            c.scheme,
            c.wall_ms,
            c.refs_per_sec / 1e6
        );
    }
    let doc = hotpath::bench_report(&config, &cases);
    if let Err(e) = write_atomic(&out, doc.to_pretty()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

/// `hvcsim serve ...`: run the HTTP experiment server until killed.
/// Results land in the memoizing cache (and the spool, when given), so
/// restarting after a kill resumes any interrupted sweep.
fn serve_main(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut config = ServeConfig::default();

    let mut i = 0;
    let next = |i: &mut usize| -> Option<String> {
        *i += 1;
        args.get(*i - 1).cloned()
    };
    while i < args.len() {
        let arg = args[i].clone();
        i += 1;
        let bad = || {
            eprintln!("invalid or missing value for {arg}\n\n{USAGE}");
            ExitCode::FAILURE
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => match next(&mut i) {
                Some(a) => addr = a,
                None => return bad(),
            },
            "--jobs" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.jobs = n,
                None => return bad(),
            },
            "--cache-capacity" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.cache_capacity = n,
                None => return bad(),
            },
            "--spool" => match next(&mut i) {
                Some(dir) => config.spool_dir = Some(dir.into()),
                None => return bad(),
            },
            _ => {
                eprintln!("unknown option {arg}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let spool = config
        .spool_dir
        .as_ref()
        .map(|d| d.display().to_string())
        .unwrap_or_else(|| "off (in-memory only)".into());
    let server = match Server::start(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "hvcsim serve listening on http://{} (spool: {spool})",
        server.addr()
    );
    eprintln!("endpoints: GET /healthz, GET /stats, GET /presets, POST /sweep");
    // Serve until the process is killed; completed cells are already
    // spooled, so a kill at any instant is resumable.
    loop {
        std::thread::park();
    }
}

/// Checks one workload under a virtualized scheme: guest setup in a
/// fresh VM, run against the nested-baseline oracle, final sweep.
fn check_virt_workload(
    exp: &Experiment,
    workload: &str,
    seed: u64,
    scheme: VirtScheme,
) -> Result<(), String> {
    let spec = params::workload_by_name(workload, exp.mem)
        .ok_or_else(|| format!("unknown workload '{workload}'"))?;
    let vm_bytes = (exp.mem * 4).max(1 << 30);
    let (mut harness, mut wl) = VirtDiffHarness::new(
        SystemConfig::isca2016(),
        scheme,
        CheckConfig::default(),
        || {
            let mut hv = Hypervisor::new(vm_bytes + (1 << 30));
            let vm = hv.create_vm(vm_bytes, AllocPolicy::DemandPaging, false)?;
            let gk = hv.guest_kernel_mut(vm)?;
            let wl = spec.instantiate(gk, seed)?;
            Ok((hv, vm, wl))
        },
    )
    .map_err(|e| format!("virt setup failed: {e}"))?;
    if exp.warm > 0 {
        harness.warm_up(&mut wl, exp.warm);
    }
    harness.run(&mut wl, exp.refs);
    let violations = harness.finish();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; "))
    }
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(String::from)
        .collect()
}

/// Classic single-run mode.
fn single_main(args: &[String]) -> ExitCode {
    let mut workload = "gups".to_string();
    let mut scheme = "manyseg".to_string();
    let mut refs = 500_000usize;
    let mut warm: Option<usize> = None;
    let mut seed = 42u64;
    let mut mem = 512u64 << 20;
    let mut llc = 2u64 << 20;
    let mut cores = 1usize;
    let mut ifetch = false;
    let mut obs = false;
    let mut trace_events: Option<String> = None;
    let mut save_trace: Option<String> = None;
    let mut replay: Option<String> = None;

    let mut i = 0;
    let next = |i: &mut usize| -> Option<String> {
        *i += 1;
        args.get(*i - 1).cloned()
    };
    while i < args.len() {
        let arg = args[i].clone();
        i += 1;
        let bad = || {
            eprintln!("invalid or missing value for {arg}\n\n{USAGE}");
            ExitCode::FAILURE
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                println!("workload profiles:");
                println!("  big-memory : gups milc mcf xalancbmk tigr omnetpp soplex");
                println!("               astar cactus gems canneal stream mummer");
                println!("               memcached cg graph500");
                println!("  synonym    : ferret postgres specjbb firefox apache");
                return ExitCode::SUCCESS;
            }
            "--workload" => match next(&mut i) {
                Some(v) => workload = v,
                None => return bad(),
            },
            "--scheme" => match next(&mut i) {
                Some(v) => scheme = v,
                None => return bad(),
            },
            "--refs" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => refs = v,
                None => return bad(),
            },
            "--warm" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => warm = Some(v),
                None => return bad(),
            },
            "--seed" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return bad(),
            },
            "--mem" => match next(&mut i).and_then(|v| params::parse_size(&v)) {
                Some(v) => mem = v,
                None => return bad(),
            },
            "--llc" => match next(&mut i).and_then(|v| params::parse_size(&v)) {
                Some(v) => llc = v,
                None => return bad(),
            },
            "--cores" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => cores = v,
                None => return bad(),
            },
            "--ifetch" => ifetch = true,
            "--obs" => obs = true,
            "--trace-events" => match next(&mut i) {
                Some(v) => trace_events = Some(v),
                None => return bad(),
            },
            "--save-trace" => match next(&mut i) {
                Some(v) => save_trace = Some(v),
                None => return bad(),
            },
            "--replay" => match next(&mut i) {
                Some(v) => replay = Some(v),
                None => return bad(),
            },
            _ => {
                eprintln!("unknown option {arg}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(spec) = params::workload_by_name(&workload, mem) else {
        eprintln!("unknown workload '{workload}' (try --list)");
        return ExitCode::FAILURE;
    };
    let Some((scheme, policy)) = params::parse_scheme(&scheme) else {
        eprintln!("unknown scheme '{scheme}'\n\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut config = SystemConfig::isca2016();
    config.hierarchy = hvc::cache::HierarchyConfig::isca2016(cores.max(1));
    if llc != 2 << 20 {
        if !params::valid_llc(llc) {
            eprintln!(
                "--llc {llc} is not a valid 16-way geometry (use a power of two ≥ 64K, e.g. 2M, 8M)"
            );
            return ExitCode::FAILURE;
        }
        config.hierarchy.llc = hvc::cache::CacheConfig::new(llc, 16, hvc::types::Cycles::new(27));
    }
    config.model_ifetch = ifetch;
    if trace_events.is_some() {
        // Bounded ring buffer: a long run keeps the newest window.
        config.trace_capacity = 1 << 18;
    }

    let mut kernel = Kernel::new(16 << 30, policy);
    let mut wl = match spec.instantiate(&mut kernel, seed) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("failed to set up workload: {e}");
            return ExitCode::FAILURE;
        }
    };

    let warm = warm.unwrap_or(refs / 2);
    eprintln!(
        "running {} under {:?} ({} warm-up + {} measured references)…",
        wl.name(),
        scheme,
        warm,
        refs
    );
    let mut sim = SystemSim::new(kernel, config, scheme);
    if warm > 0 {
        sim.warm_up(&mut wl, warm);
    }
    let start = std::time::Instant::now();
    let report = if let Some(path) = &replay {
        // Replay a saved trace (the workload instance still provided the
        // memory layout; the stream comes from the file). A corrupt
        // trace aborts the run instead of silently truncating it.
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let reader = match hvc::trace::read_trace(std::io::BufReader::new(file)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot read trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let items: Vec<hvc::types::TraceItem> = match reader.take(refs).collect() {
            Ok(items) => items,
            Err(e) => {
                eprintln!("corrupt trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mlp = wl.mlp();
        sim.run_trace(items, mlp)
    } else if let Some(path) = &save_trace {
        let items: Vec<hvc::types::TraceItem> = (0..refs).map(|_| wl.next_item()).collect();
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) =
            hvc::trace::write_trace(std::io::BufWriter::new(file), items.iter().copied())
        {
            eprintln!("cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("saved {} references to {path}", items.len());
        let mlp = wl.mlp();
        sim.run_trace(items, mlp)
    } else {
        sim.run(&mut wl, refs)
    };
    let wall = start.elapsed();

    let t = &report.translation;
    println!("== {} / {:?} ==", wl.name(), sim.scheme());
    println!("instructions        {:>12}", report.instructions);
    println!("cycles              {:>12}", report.cycles);
    println!("IPC                 {:>12.4}", report.ipc());
    println!("front TLB lookups   {:>12}", t.front_tlb_accesses());
    println!("filter lookups      {:>12}", t.filter_lookups);
    println!("  candidates        {:>12}", t.filter_candidates);
    println!("  false positives   {:>12}", t.false_positives);
    println!("delayed TLB lookups {:>12}", t.delayed_tlb_lookups);
    println!("  misses            {:>12}", t.delayed_tlb_misses);
    println!("segment-cache hits  {:>12}", t.sc_lookups);
    println!("PTE reads           {:>12}", t.pte_reads);
    println!("shared accesses     {:>12}", t.shared_accesses);
    println!(
        "LLC miss rate       {:>11.1}%",
        report.cache.llc.miss_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "DRAM mean latency   {:>12.1}",
        report.dram.mean_latency().unwrap_or(0.0)
    );
    let energy = EnergyModel::cacti_32nm().breakdown(t, 4096).total() / 1e6;
    println!("translation energy  {:>10.2} µJ", energy);
    println!("minor faults        {:>12}", report.minor_faults);
    if obs {
        let mem = &report.obs.mem_latency;
        println!("memory latency (cycles over {} accesses)", mem.count());
        println!("  p50               {:>12}", mem.p50());
        println!("  p95               {:>12}", mem.p95());
        println!("  p99               {:>12}", mem.p99());
        println!("  max               {:>12}", mem.max());
        println!("cycle attribution");
        for &c in hvc::obs::Component::ALL.iter() {
            let cycles = report.obs.attribution.get(c);
            if cycles.get() > 0 {
                println!("  {:<17} {:>12}", c.name(), cycles.get());
            }
        }
        println!(
            "  {:<17} {:>12}",
            "total",
            report.obs.attribution.total().get()
        );
    }
    if let Some(path) = &trace_events {
        let Some(tracer) = sim.tracer() else {
            eprintln!("tracer was not enabled");
            return ExitCode::FAILURE;
        };
        let doc = hvc::runner::trace_events_json(tracer.events().copied());
        if let Err(e) = write_atomic(path, doc.to_pretty()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} trace events to {path} ({} dropped by the ring buffer)",
            tracer.len(),
            tracer.dropped()
        );
    }
    println!(
        "simulated {:.2} M refs/s",
        (warm + refs) as f64 / wall.as_secs_f64() / 1e6
    );
    ExitCode::SUCCESS
}
