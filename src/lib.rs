//! # hvc — Hybrid Virtual Caching
//!
//! A production-quality Rust reproduction of *"Efficient Synonym
//! Filtering and Scalable Delayed Translation for Hybrid Virtual
//! Caching"* (ISCA 2016): a full-system simulation stack in which the
//! entire cache hierarchy is virtually addressed for non-synonym pages,
//! synonyms are detected by OS-maintained Bloom filters, and address
//! translation is delayed until LLC misses — by a large delayed TLB or by
//! scalable many-segment translation.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | addresses, ASIDs, permissions, traces |
//! | [`mem`] | DDR3-style DRAM timing |
//! | [`cache`] | hybrid-tagged cache hierarchy + coherence |
//! | [`os`] | kernel: frames, page tables, segments, sharing |
//! | [`filter`] | Bloom-filter synonym detection |
//! | [`tlb`] | TLBs and hardware page walking |
//! | [`trace`] | binary trace capture / replay |
//! | [`obs`] | latency histograms, cycle attribution, event tracing |
//! | [`segment`] | many-segment delayed translation + RMM baseline |
//! | [`virt`] | hypervisor and nested (2D) translation |
//! | [`core`] | translation schemes, system simulator, energy model |
//! | [`workloads`] | synthetic application trace generators |
//! | [`check`] | differential oracle + invariant checking |
//! | [`runner`] | parallel experiment sweeps + JSON reports |
//! | [`serve`] | HTTP experiment server: memoizing cache + resumable sweeps |
//! | [`mod@bench`] | figure/table harnesses + simulator-throughput bench |
//!
//! # Quickstart
//!
//! ```
//! use hvc::core::{SystemConfig, SystemSim, TranslationScheme};
//! use hvc::os::{AllocPolicy, Kernel};
//! use hvc::workloads::apps;
//!
//! # fn main() -> Result<(), hvc::types::HvcError> {
//! // Boot an OS, install a workload, pick an architecture, simulate.
//! let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
//! let mut workload = apps::gups(16 << 20).instantiate(&mut kernel, 42)?;
//! let mut sim = SystemSim::new(
//!     kernel,
//!     SystemConfig::isca2016(),
//!     TranslationScheme::HybridDelayedTlb(4096),
//! );
//! let report = sim.run(&mut workload, 50_000);
//! println!("IPC = {:.3}", report.ipc());
//! assert!(report.translation.l1_tlb_lookups == 0, "TLB bypassed for private pages");
//! # Ok(())
//! # }
//! ```

pub use hvc_bench as bench;
pub use hvc_cache as cache;
pub use hvc_check as check;
pub use hvc_core as core;
pub use hvc_filter as filter;
pub use hvc_mem as mem;
pub use hvc_obs as obs;
pub use hvc_os as os;
pub use hvc_runner as runner;
pub use hvc_segment as segment;
pub use hvc_serve as serve;
pub use hvc_tlb as tlb;
pub use hvc_trace as trace;
pub use hvc_types as types;
pub use hvc_virt as virt;
pub use hvc_workloads as workloads;
