/root/repo/.ab/pre/target/release/deps/hvc_virt-f6a03596a96c8d41.d: crates/virt/src/lib.rs crates/virt/src/hypervisor.rs crates/virt/src/nested.rs crates/virt/src/nested_segments.rs

/root/repo/.ab/pre/target/release/deps/libhvc_virt-f6a03596a96c8d41.rlib: crates/virt/src/lib.rs crates/virt/src/hypervisor.rs crates/virt/src/nested.rs crates/virt/src/nested_segments.rs

/root/repo/.ab/pre/target/release/deps/libhvc_virt-f6a03596a96c8d41.rmeta: crates/virt/src/lib.rs crates/virt/src/hypervisor.rs crates/virt/src/nested.rs crates/virt/src/nested_segments.rs

crates/virt/src/lib.rs:
crates/virt/src/hypervisor.rs:
crates/virt/src/nested.rs:
crates/virt/src/nested_segments.rs:
