/root/repo/.ab/pre/target/release/deps/hvc_workloads-99eb0a4a18a82df9.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/patterns.rs crates/workloads/src/spec.rs

/root/repo/.ab/pre/target/release/deps/libhvc_workloads-99eb0a4a18a82df9.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/patterns.rs crates/workloads/src/spec.rs

/root/repo/.ab/pre/target/release/deps/libhvc_workloads-99eb0a4a18a82df9.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/patterns.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/patterns.rs:
crates/workloads/src/spec.rs:
