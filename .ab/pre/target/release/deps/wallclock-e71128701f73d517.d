/root/repo/.ab/pre/target/release/deps/wallclock-e71128701f73d517.d: crates/bench/benches/wallclock.rs

/root/repo/.ab/pre/target/release/deps/wallclock-e71128701f73d517: crates/bench/benches/wallclock.rs

crates/bench/benches/wallclock.rs:
