/root/repo/.ab/pre/target/release/deps/hvc_trace-4b12401b972733e7.d: crates/trace/src/lib.rs

/root/repo/.ab/pre/target/release/deps/libhvc_trace-4b12401b972733e7.rlib: crates/trace/src/lib.rs

/root/repo/.ab/pre/target/release/deps/libhvc_trace-4b12401b972733e7.rmeta: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
