/root/repo/.ab/pre/target/release/deps/hvc_cache-80366c59e9905b17.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/hierarchy.rs crates/cache/src/stats.rs

/root/repo/.ab/pre/target/release/deps/libhvc_cache-80366c59e9905b17.rlib: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/hierarchy.rs crates/cache/src/stats.rs

/root/repo/.ab/pre/target/release/deps/libhvc_cache-80366c59e9905b17.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/hierarchy.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/config.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/stats.rs:
