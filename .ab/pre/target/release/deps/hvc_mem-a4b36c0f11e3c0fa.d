/root/repo/.ab/pre/target/release/deps/hvc_mem-a4b36c0f11e3c0fa.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/stats.rs

/root/repo/.ab/pre/target/release/deps/libhvc_mem-a4b36c0f11e3c0fa.rlib: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/stats.rs

/root/repo/.ab/pre/target/release/deps/libhvc_mem-a4b36c0f11e3c0fa.rmeta: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/stats.rs

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/stats.rs:
