/root/repo/.ab/pre/target/release/deps/hvc_types-f4fd5cd79f4da12f.d: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/addr.rs crates/types/src/check.rs crates/types/src/cycles.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/merge.rs crates/types/src/perm.rs

/root/repo/.ab/pre/target/release/deps/libhvc_types-f4fd5cd79f4da12f.rlib: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/addr.rs crates/types/src/check.rs crates/types/src/cycles.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/merge.rs crates/types/src/perm.rs

/root/repo/.ab/pre/target/release/deps/libhvc_types-f4fd5cd79f4da12f.rmeta: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/addr.rs crates/types/src/check.rs crates/types/src/cycles.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/merge.rs crates/types/src/perm.rs

crates/types/src/lib.rs:
crates/types/src/access.rs:
crates/types/src/addr.rs:
crates/types/src/check.rs:
crates/types/src/cycles.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/merge.rs:
crates/types/src/perm.rs:
