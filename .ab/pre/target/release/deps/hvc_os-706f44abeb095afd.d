/root/repo/.ab/pre/target/release/deps/hvc_os-706f44abeb095afd.d: crates/os/src/lib.rs crates/os/src/addrspace.rs crates/os/src/frame.rs crates/os/src/kernel.rs crates/os/src/pagetable.rs crates/os/src/segment.rs crates/os/src/shm.rs

/root/repo/.ab/pre/target/release/deps/libhvc_os-706f44abeb095afd.rlib: crates/os/src/lib.rs crates/os/src/addrspace.rs crates/os/src/frame.rs crates/os/src/kernel.rs crates/os/src/pagetable.rs crates/os/src/segment.rs crates/os/src/shm.rs

/root/repo/.ab/pre/target/release/deps/libhvc_os-706f44abeb095afd.rmeta: crates/os/src/lib.rs crates/os/src/addrspace.rs crates/os/src/frame.rs crates/os/src/kernel.rs crates/os/src/pagetable.rs crates/os/src/segment.rs crates/os/src/shm.rs

crates/os/src/lib.rs:
crates/os/src/addrspace.rs:
crates/os/src/frame.rs:
crates/os/src/kernel.rs:
crates/os/src/pagetable.rs:
crates/os/src/segment.rs:
crates/os/src/shm.rs:
