/root/repo/.ab/pre/target/release/deps/hvc_filter-40b025968fc8a9cc.d: crates/filter/src/lib.rs crates/filter/src/bloom.rs crates/filter/src/synonym.rs

/root/repo/.ab/pre/target/release/deps/libhvc_filter-40b025968fc8a9cc.rlib: crates/filter/src/lib.rs crates/filter/src/bloom.rs crates/filter/src/synonym.rs

/root/repo/.ab/pre/target/release/deps/libhvc_filter-40b025968fc8a9cc.rmeta: crates/filter/src/lib.rs crates/filter/src/bloom.rs crates/filter/src/synonym.rs

crates/filter/src/lib.rs:
crates/filter/src/bloom.rs:
crates/filter/src/synonym.rs:
