/root/repo/.ab/pre/target/release/deps/hvc_obs-cc8855857e593277.d: crates/obs/src/lib.rs crates/obs/src/attr.rs crates/obs/src/hist.rs crates/obs/src/tracer.rs

/root/repo/.ab/pre/target/release/deps/libhvc_obs-cc8855857e593277.rlib: crates/obs/src/lib.rs crates/obs/src/attr.rs crates/obs/src/hist.rs crates/obs/src/tracer.rs

/root/repo/.ab/pre/target/release/deps/libhvc_obs-cc8855857e593277.rmeta: crates/obs/src/lib.rs crates/obs/src/attr.rs crates/obs/src/hist.rs crates/obs/src/tracer.rs

crates/obs/src/lib.rs:
crates/obs/src/attr.rs:
crates/obs/src/hist.rs:
crates/obs/src/tracer.rs:
