/root/repo/.ab/pre/target/release/deps/hvc_segment-9544926e2c57c005.d: crates/segment/src/lib.rs crates/segment/src/direct.rs crates/segment/src/hw_table.rs crates/segment/src/index_cache.rs crates/segment/src/index_tree.rs crates/segment/src/many.rs crates/segment/src/rmm.rs crates/segment/src/segment_cache.rs

/root/repo/.ab/pre/target/release/deps/libhvc_segment-9544926e2c57c005.rlib: crates/segment/src/lib.rs crates/segment/src/direct.rs crates/segment/src/hw_table.rs crates/segment/src/index_cache.rs crates/segment/src/index_tree.rs crates/segment/src/many.rs crates/segment/src/rmm.rs crates/segment/src/segment_cache.rs

/root/repo/.ab/pre/target/release/deps/libhvc_segment-9544926e2c57c005.rmeta: crates/segment/src/lib.rs crates/segment/src/direct.rs crates/segment/src/hw_table.rs crates/segment/src/index_cache.rs crates/segment/src/index_tree.rs crates/segment/src/many.rs crates/segment/src/rmm.rs crates/segment/src/segment_cache.rs

crates/segment/src/lib.rs:
crates/segment/src/direct.rs:
crates/segment/src/hw_table.rs:
crates/segment/src/index_cache.rs:
crates/segment/src/index_tree.rs:
crates/segment/src/many.rs:
crates/segment/src/rmm.rs:
crates/segment/src/segment_cache.rs:
