/root/repo/.ab/pre/target/release/deps/hvc_check-4857122802513314.d: crates/check/src/lib.rs crates/check/src/invariants.rs crates/check/src/oracle.rs crates/check/src/stress.rs crates/check/src/violation.rs

/root/repo/.ab/pre/target/release/deps/libhvc_check-4857122802513314.rlib: crates/check/src/lib.rs crates/check/src/invariants.rs crates/check/src/oracle.rs crates/check/src/stress.rs crates/check/src/violation.rs

/root/repo/.ab/pre/target/release/deps/libhvc_check-4857122802513314.rmeta: crates/check/src/lib.rs crates/check/src/invariants.rs crates/check/src/oracle.rs crates/check/src/stress.rs crates/check/src/violation.rs

crates/check/src/lib.rs:
crates/check/src/invariants.rs:
crates/check/src/oracle.rs:
crates/check/src/stress.rs:
crates/check/src/violation.rs:
