/root/repo/.ab/pre/target/release/deps/hvc_tlb-c91a711e7c4054a8.d: crates/tlb/src/lib.rs crates/tlb/src/tlb.rs crates/tlb/src/two_level.rs crates/tlb/src/walkcache.rs crates/tlb/src/walker.rs

/root/repo/.ab/pre/target/release/deps/libhvc_tlb-c91a711e7c4054a8.rlib: crates/tlb/src/lib.rs crates/tlb/src/tlb.rs crates/tlb/src/two_level.rs crates/tlb/src/walkcache.rs crates/tlb/src/walker.rs

/root/repo/.ab/pre/target/release/deps/libhvc_tlb-c91a711e7c4054a8.rmeta: crates/tlb/src/lib.rs crates/tlb/src/tlb.rs crates/tlb/src/two_level.rs crates/tlb/src/walkcache.rs crates/tlb/src/walker.rs

crates/tlb/src/lib.rs:
crates/tlb/src/tlb.rs:
crates/tlb/src/two_level.rs:
crates/tlb/src/walkcache.rs:
crates/tlb/src/walker.rs:
