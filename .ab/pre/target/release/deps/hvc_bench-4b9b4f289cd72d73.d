/root/repo/.ab/pre/target/release/deps/hvc_bench-4b9b4f289cd72d73.d: crates/bench/src/lib.rs crates/bench/src/wallclock.rs

/root/repo/.ab/pre/target/release/deps/libhvc_bench-4b9b4f289cd72d73.rlib: crates/bench/src/lib.rs crates/bench/src/wallclock.rs

/root/repo/.ab/pre/target/release/deps/libhvc_bench-4b9b4f289cd72d73.rmeta: crates/bench/src/lib.rs crates/bench/src/wallclock.rs

crates/bench/src/lib.rs:
crates/bench/src/wallclock.rs:
