/root/repo/.ab/pre/target/release/deps/hvc_runner-08d823ddc4db0fcd.d: crates/runner/src/lib.rs crates/runner/src/exec.rs crates/runner/src/grid.rs crates/runner/src/json.rs crates/runner/src/params.rs crates/runner/src/presets.rs crates/runner/src/report.rs

/root/repo/.ab/pre/target/release/deps/libhvc_runner-08d823ddc4db0fcd.rlib: crates/runner/src/lib.rs crates/runner/src/exec.rs crates/runner/src/grid.rs crates/runner/src/json.rs crates/runner/src/params.rs crates/runner/src/presets.rs crates/runner/src/report.rs

/root/repo/.ab/pre/target/release/deps/libhvc_runner-08d823ddc4db0fcd.rmeta: crates/runner/src/lib.rs crates/runner/src/exec.rs crates/runner/src/grid.rs crates/runner/src/json.rs crates/runner/src/params.rs crates/runner/src/presets.rs crates/runner/src/report.rs

crates/runner/src/lib.rs:
crates/runner/src/exec.rs:
crates/runner/src/grid.rs:
crates/runner/src/json.rs:
crates/runner/src/params.rs:
crates/runner/src/presets.rs:
crates/runner/src/report.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
