/root/repo/.ab/pre/target/release/deps/hvc_core-7f768772ad995ff0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/core_model.rs crates/core/src/energy.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/virt_system.rs

/root/repo/.ab/pre/target/release/deps/libhvc_core-7f768772ad995ff0.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/core_model.rs crates/core/src/energy.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/virt_system.rs

/root/repo/.ab/pre/target/release/deps/libhvc_core-7f768772ad995ff0.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/core_model.rs crates/core/src/energy.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/virt_system.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/core_model.rs:
crates/core/src/energy.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/virt_system.rs:
