//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! stream the real crate uses, but deterministic, well distributed, and
//! more than adequate for driving synthetic workload generators and
//! property tests.
//!
//! Code written against this shim stays source-compatible with the real
//! crate for the covered API, so swapping the path dependency back to
//! crates.io requires no source changes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `rand` crate this shim makes no cross-version
    /// reproducibility promise beyond this repository, which is the only
    /// guarantee the simulator needs (same seed → same trace).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        // All-zero state is the one invalid xoshiro state.
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Low-level generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible uniformly from a generator (stands in for
/// `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`] (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by Lemire-style rejection-free widening
/// multiply (negligible bias is unacceptable for tests, so reject).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Types with a uniform-distribution sampler (stands in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample from empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample from empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_mean_matches_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000u64;
        let total: u64 = (0..n).map(|_| rng.gen_range(0u64..=8)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }
}
