//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the interface its benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`], and
//! [`criterion_main!`]. Instead of criterion's statistical analysis it
//! does a short calibration pass followed by one timed batch and prints
//! a `name: time/iter` line — enough for relative comparisons while
//! keeping `cargo bench` self-contained.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque barrier against compiler optimization of benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark body.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count filling ~50 ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || n >= 1 << 30 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            n = n.saturating_mul(4);
        }
    }
}

/// The benchmark driver (a minimal subset of criterion's).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs the benchmark `f` under `name` and prints its timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let t = b.ns_per_iter;
        if t >= 1e6 {
            println!("{name:<40} {:>12.3} ms/iter", t / 1e6);
        } else if t >= 1e3 {
            println!("{name:<40} {:>12.3} µs/iter", t / 1e3);
        } else {
            println!("{name:<40} {t:>12.1} ns/iter");
        }
        self
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
