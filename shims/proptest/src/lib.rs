//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the proptest API its test suites use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, the
//! `prop_assert*` family, [`Strategy`](strategy::Strategy) with
//! `prop_map`, [`prop_oneof!`], [`Just`](strategy::Just), `any::<T>()`,
//! tuple strategies, integer/float range
//! strategies, and the `prop::{collection, option, sample}` modules.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case
//!   seed instead of a minimized input.
//! * **Deterministic seeding.** Case `i` of test `t` is seeded from
//!   `fnv(t) ⊕ i`, so failures reproduce exactly across runs and
//!   machines. Set `PROPTEST_CASES` to override the case count
//!   globally.
//! * `prop_assert!` panics (like `assert!`) rather than returning a
//!   `TestCaseError`; test functions observe no difference.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// Controls how many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// The effective case count (`PROPTEST_CASES` overrides).
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the heavier
            // simulator properties fast while still exploring broadly.
            Config { cases: 64 }
        }
    }
}

/// Value-generation strategies (mirrors `proptest::strategy`).
pub mod strategy {
    use super::*;

    /// A generator of values of one type.
    ///
    /// The real crate's strategies produce shrinkable value *trees*;
    /// this shim generates plain values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy producing always the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A boxed, object-safe strategy (what [`prop_oneof!`] stores).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    /// Boxes a strategy (used by [`prop_oneof!`] expansion).
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies of one value type.
    pub struct Union<V> {
        choices: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `choices` is empty.
        pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !choices.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { choices }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let idx = rng.gen_range(0..self.choices.len());
            self.choices[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `any::<T>()` support (mirrors `proptest::arbitrary`).
pub mod arbitrary {
    use super::*;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy over every value of `T`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors of `elem` values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a cardinality drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates sets of `elem` values with a cardinality in `size`
    /// (best effort: duplicates are redrawn a bounded number of times,
    /// so a domain smaller than the requested size yields fewer
    /// elements).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(20) + 16 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `Option` strategies (mirrors `proptest::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Option<T>`: `Some` half of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` or `Some(value of inner)` with equal odds.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling strategies (mirrors `proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy choosing uniformly among fixed values.
    pub struct Select<T> {
        values: Vec<T>,
    }

    /// Chooses one of `values` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use super::collection;
    pub use super::option;
    pub use super::sample;
}

/// Deterministic per-case seeding support used by [`proptest!`].
#[doc(hidden)]
pub mod __runner {
    use super::*;

    /// FNV-1a hash of the test name (stable across runs/platforms).
    pub fn name_hash(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The RNG for case `case` of test `name`.
    pub fn case_rng(name: &str, case: u32) -> StdRng {
        StdRng::seed_from_u64(name_hash(name) ^ (u64::from(case) << 32 | u64::from(case)))
    }

    /// Runs one case, decorating any panic with the case coordinates so
    /// failures are reproducible without shrinking.
    pub fn run_case<F: FnOnce() + std::panic::UnwindSafe>(name: &str, case: u32, f: F) {
        if let Err(panic) = std::panic::catch_unwind(f) {
            eprintln!(
                "proptest: property '{name}' failed at deterministic case {case} \
                 (rerun reproduces it exactly)"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Everything a property-test file needs (mirrors
/// `proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(binding in strategy, ..)` runs
/// its body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::Config::effective_cases(&$cfg);
            for case in 0..cases {
                let mut rng = $crate::__runner::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $crate::__runner::run_case(
                    stringify!($name),
                    case,
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in 10u64..20, y in 0u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn tuples_and_maps_compose(
            v in prop::collection::vec((0u32..10).prop_map(|n| n * 2), 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
            // `flag` takes both values across cases; just make sure the
            // strategy produced a real bool.
            prop_assert!(flag == (flag as u8 == 1));
        }

        #[test]
        fn oneof_selects_each_arm(k in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(k == 1 || k == 2 || (5..7).contains(&k));
        }

        #[test]
        fn btree_set_respects_size(s in prop::collection::btree_set(0u64..1000, 2..12)) {
            prop_assert!(s.len() >= 2 && s.len() < 12, "len {}", s.len());
        }

        #[test]
        fn select_picks_members(v in prop::sample::select(vec![3u64, 5, 8])) {
            prop_assert!([3u64, 5, 8].contains(&v));
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u8..4)) {
            if let Some(x) = o { prop_assert!(x < 4); }
        }
    }

    #[test]
    fn deterministic_cases() {
        use crate::strategy::Strategy;
        let a = (0u64..1000).generate(&mut crate::__runner::case_rng("t", 3));
        let b = (0u64..1000).generate(&mut crate::__runner::case_rng("t", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }
}
